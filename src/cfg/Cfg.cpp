//===- Cfg.cpp - Control-flow graph view and analyses ------------------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "cfg/Cfg.h"

#include <algorithm>

namespace pathfuzz {
namespace cfg {

CfgView::CfgView(const mir::Function &F) {
  build(F);
  classifyEdges();
}

void CfgView::build(const mir::Function &F) {
  unsigned N = F.numBlocks();
  Succ.assign(N, {});
  Pred.assign(N, {});
  Reachable.assign(N, false);
  ExitBlock.assign(N, false);

  for (uint32_t B = 0; B < N; ++B) {
    const mir::Terminator &T = F.Blocks[B].Term;
    if (T.Kind == mir::TermKind::Ret)
      ExitBlock[B] = true;
    for (uint32_t Slot = 0; Slot < T.Succs.size(); ++Slot) {
      Edge E;
      E.Src = B;
      E.Slot = Slot;
      E.Dst = T.Succs[Slot];
      uint32_t Index = static_cast<uint32_t>(AllEdges.size());
      AllEdges.push_back(E);
      Succ[B].push_back(Index);
      Pred[E.Dst].push_back(Index);
    }
  }
}

void CfgView::classifyEdges() {
  unsigned N = numBlocks();
  BackEdge.assign(AllEdges.size(), false);
  if (N == 0)
    return;

  // Iterative DFS with tri-color marking; an edge to a gray node is a back
  // edge. The DFS visits successor slots in order, so classification is
  // deterministic across runs and platforms.
  enum : uint8_t { White, Gray, Black };
  std::vector<uint8_t> Color(N, White);
  struct Frame {
    uint32_t Block;
    uint32_t NextSlot;
  };
  std::vector<Frame> Stack;
  Stack.push_back({0, 0});
  Color[0] = Gray;
  Reachable[0] = true;

  while (!Stack.empty()) {
    Frame &Top = Stack.back();
    const std::vector<uint32_t> &Out = Succ[Top.Block];
    if (Top.NextSlot == Out.size()) {
      Color[Top.Block] = Black;
      Stack.pop_back();
      continue;
    }
    uint32_t EdgeIndex = Out[Top.NextSlot++];
    uint32_t Dst = AllEdges[EdgeIndex].Dst;
    if (Color[Dst] == Gray) {
      BackEdge[EdgeIndex] = true;
      ++NumBackEdges;
      continue;
    }
    if (Color[Dst] == White) {
      Color[Dst] = Gray;
      Reachable[Dst] = true;
      Stack.push_back({Dst, 0});
    }
  }

  // Topological order of the acyclic remainder (reachable blocks, back
  // edges removed): DFS postorder, reversed.
  std::vector<uint8_t> Visited(N, 0);
  std::vector<uint32_t> Post;
  Post.reserve(N);
  Stack.clear();
  Stack.push_back({0, 0});
  Visited[0] = 1;
  while (!Stack.empty()) {
    Frame &Top = Stack.back();
    const std::vector<uint32_t> &Out = Succ[Top.Block];
    bool Descended = false;
    while (Top.NextSlot < Out.size()) {
      uint32_t EdgeIndex = Out[Top.NextSlot++];
      if (BackEdge[EdgeIndex])
        continue;
      uint32_t Dst = AllEdges[EdgeIndex].Dst;
      if (Visited[Dst])
        continue;
      Visited[Dst] = 1;
      Stack.push_back({Dst, 0});
      Descended = true;
      break;
    }
    if (Descended)
      continue;
    if (Top.NextSlot == Out.size()) {
      Post.push_back(Top.Block);
      Stack.pop_back();
    }
  }
  Topo.assign(Post.rbegin(), Post.rend());
}

bool CfgView::isCriticalEdge(uint32_t EdgeIndex) const {
  const Edge &E = AllEdges[EdgeIndex];
  return Succ[E.Src].size() > 1 && Pred[E.Dst].size() > 1;
}

//===----------------------------------------------------------------------===//
// DominatorTree
//===----------------------------------------------------------------------===//

DominatorTree::DominatorTree(const CfgView &G) {
  unsigned N = G.numBlocks();
  Idom.assign(N, UINT32_MAX);
  RpoNumber.assign(N, UINT32_MAX);
  if (N == 0)
    return;

  // Reverse postorder over the full graph (back edges included) restricted
  // to reachable blocks; topoOrder() already is an RPO of the DAG, and for
  // dominators any RPO works as an iteration order, so derive one from a
  // plain DFS postorder here.
  std::vector<uint32_t> Rpo;
  {
    std::vector<uint8_t> Visited(N, 0);
    struct Frame {
      uint32_t Block;
      uint32_t NextSlot;
    };
    std::vector<Frame> Stack;
    std::vector<uint32_t> Post;
    Stack.push_back({0, 0});
    Visited[0] = 1;
    while (!Stack.empty()) {
      Frame &Top = Stack.back();
      const std::vector<uint32_t> &Out = G.succEdges(Top.Block);
      bool Descended = false;
      while (Top.NextSlot < Out.size()) {
        uint32_t Dst = G.edges()[Out[Top.NextSlot++]].Dst;
        if (Visited[Dst])
          continue;
        Visited[Dst] = 1;
        Stack.push_back({Dst, 0});
        Descended = true;
        break;
      }
      if (Descended)
        continue;
      if (Top.NextSlot == Out.size()) {
        Post.push_back(Top.Block);
        Stack.pop_back();
      }
    }
    Rpo.assign(Post.rbegin(), Post.rend());
  }
  for (uint32_t I = 0; I < Rpo.size(); ++I)
    RpoNumber[Rpo[I]] = I;

  auto Intersect = [&](uint32_t A, uint32_t B) {
    while (A != B) {
      while (RpoNumber[A] > RpoNumber[B])
        A = Idom[A];
      while (RpoNumber[B] > RpoNumber[A])
        B = Idom[B];
    }
    return A;
  };

  Idom[0] = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (uint32_t B : Rpo) {
      if (B == 0)
        continue;
      uint32_t NewIdom = UINT32_MAX;
      for (uint32_t EdgeIndex : G.predEdges(B)) {
        uint32_t P = G.edges()[EdgeIndex].Src;
        if (!G.isReachable(P) || Idom[P] == UINT32_MAX)
          continue;
        NewIdom = (NewIdom == UINT32_MAX) ? P : Intersect(NewIdom, P);
      }
      if (NewIdom != UINT32_MAX && Idom[B] != NewIdom) {
        Idom[B] = NewIdom;
        Changed = true;
      }
    }
  }
}

bool DominatorTree::dominates(uint32_t A, uint32_t B) const {
  if (B >= Idom.size() || Idom[B] == UINT32_MAX)
    return false;
  uint32_t Cur = B;
  for (;;) {
    if (Cur == A)
      return true;
    uint32_t Up = Idom[Cur];
    if (Up == Cur)
      return false; // reached the entry
    Cur = Up;
  }
}

//===----------------------------------------------------------------------===//
// LoopInfo
//===----------------------------------------------------------------------===//

LoopInfo LoopInfo::compute(const CfgView &G) {
  LoopInfo LI;
  unsigned N = G.numBlocks();
  LI.InnermostHeader.assign(N, UINT32_MAX);

  // Collect natural loops: for each back edge Latch->Header, the loop body
  // is Header plus everything that reaches Latch without going through
  // Header (reverse flood fill).
  struct Loop {
    uint32_t Header;
    std::vector<uint32_t> Blocks;
  };
  std::vector<Loop> Loops;

  for (uint32_t EdgeIndex = 0; EdgeIndex < G.edges().size(); ++EdgeIndex) {
    if (!G.isBackEdge(EdgeIndex))
      continue;
    const Edge &E = G.edges()[EdgeIndex];
    uint32_t Header = E.Dst;
    uint32_t Latch = E.Src;

    std::vector<bool> InLoop(N, false);
    InLoop[Header] = true;
    std::vector<uint32_t> Work;
    if (!InLoop[Latch]) {
      InLoop[Latch] = true;
      Work.push_back(Latch);
    }
    while (!Work.empty()) {
      uint32_t B = Work.back();
      Work.pop_back();
      for (uint32_t PredEdge : G.predEdges(B)) {
        uint32_t P = G.edges()[PredEdge].Src;
        if (!G.isReachable(P) || InLoop[P])
          continue;
        InLoop[P] = true;
        Work.push_back(P);
      }
    }

    Loop L;
    L.Header = Header;
    for (uint32_t B = 0; B < N; ++B)
      if (InLoop[B])
        L.Blocks.push_back(B);
    Loops.push_back(std::move(L));
  }

  // Larger loops first; smaller (inner) loops overwrite, leaving the
  // innermost header for each block.
  std::sort(Loops.begin(), Loops.end(), [](const Loop &A, const Loop &B) {
    return A.Blocks.size() > B.Blocks.size();
  });
  for (const Loop &L : Loops)
    for (uint32_t B : L.Blocks)
      LI.InnermostHeader[B] = L.Header;

  for (const Loop &L : Loops)
    LI.Headers.push_back(L.Header);
  std::sort(LI.Headers.begin(), LI.Headers.end());
  LI.Headers.erase(std::unique(LI.Headers.begin(), LI.Headers.end()),
                   LI.Headers.end());
  return LI;
}

} // namespace cfg
} // namespace pathfuzz
