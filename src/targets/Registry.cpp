//===- Registry.cpp - Subject registry ----------------------------------------===//
//
// Part of the pathfuzz project.
//
//===----------------------------------------------------------------------===//

#include "targets/Targets.h"

#include "support/Env.h"

namespace pathfuzz {
namespace targets {

fuzz::Input bytes(const char *S) {
  fuzz::Input Out;
  for (const char *P = S; *P; ++P)
    Out.push_back(static_cast<uint8_t>(*P));
  return Out;
}

fuzz::Input bytes(std::initializer_list<uint8_t> Bs) {
  return fuzz::Input(Bs);
}

const std::vector<Subject> &allSubjects() {
  static const std::vector<Subject> Suite = [] {
    std::vector<Subject> S;
    S.push_back(makeCflow());
    S.push_back(makeExiv2());
    S.push_back(makeFfmpeg());
    S.push_back(makeFlvmeta());
    S.push_back(makeGdk());
    S.push_back(makeImginfo());
    S.push_back(makeInfotocap());
    S.push_back(makeJhead());
    S.push_back(makeJq());
    S.push_back(makeLame());
    S.push_back(makeMp3gain());
    S.push_back(makeMp42aac());
    S.push_back(makeMujs());
    S.push_back(makeNmNew());
    S.push_back(makeObjdump());
    S.push_back(makePdftotext());
    S.push_back(makeSqlite3());
    S.push_back(makeTiffsplit());
    return S;
  }();
  return Suite;
}

const Subject *findSubject(const std::string &Name) {
  for (const Subject &S : allSubjects())
    if (S.Name == Name)
      return &S;
  return nullptr;
}

std::vector<Subject> subjectsFromEnv() {
  std::vector<std::string> Names = envList("REPRO_SUBJECTS");
  if (Names.empty())
    return allSubjects();
  std::vector<Subject> Out;
  for (const std::string &Name : Names)
    if (const Subject *S = findSubject(Name))
      Out.push_back(*S);
  return Out;
}

} // namespace targets
} // namespace pathfuzz
