//===- Pdftotext.cpp - pdftotext subject (PDF object parser analogue) ---------===//
//
// Part of the pathfuzz project.
//
// Mimics xpdf pdftotext's object/xref parsing and text extraction. This
// is the paper's richest subject (cull finds 18 bugs, more than twice
// pcguard's 9 in the median run); the planted set is correspondingly
// large and biased towards bugs that need sustained re-exploration:
//   B1 (plain): xref entry count trusted within a byte.
//   B2 (plain): name objects longer than the name buffer.
//   B3 (path-gated): generation numbers take a recycled-slot path only
//      when (gen % 7 == 0 && gen > 0); a later 'R' reference then indexes
//      with the recycled slot.
//   B4 (progression): each stream object grows the text cursor by its
//      filter count; the cursor is only clamped on the non-hex path.
//   B5 (path-gated): hex strings toggle a nibble state; closing a string
//      on the odd-nibble path with a '>' writes the pending nibble past
//      the text buffer when the cursor is at its limit.
//   B6 (plain): dictionary nesting depth beyond the fixed stack.
//   B7 (path-gated, branchless): font descriptor flag combinations bump a
//      per-combo counter with no branch on the combo; three 0x29-combo
//      descriptors in one document overflow the font table. Only the path
//      feedback's per-path hit counts ladder towards it.
//
//===----------------------------------------------------------------------===//

#include "targets/Targets.h"

namespace pathfuzz {
namespace targets {

Subject makePdftotext() {
  Subject S;
  S.Name = "pdftotext";
  S.Source = R"ml(
// pdftotext: PDF text extractor analogue.
global xref[20];
global names[10];
global text[24];
global dstack[6];
global pstate[8];
global fontv[64];
global fonttab[2];

fn parse_name(pos) {
  var j = 0;
  while (pos + j < len() && in(pos + j) > ' ' && j < 14) {
    names[j] = in(pos + j);       // B2: names holds 10 cells
    j = j + 1;
  }
  return pos + j;
}

fn parse_xref(pos, count) {
  var i = 0;
  while (i < count && pos + i < len()) {
    xref[i] = in(pos + i);        // B1: count is a raw byte
    i = i + 1;
  }
  return i;
}

fn parse_font_flags(pos) {
  // Font descriptor flags: six independent decisions, no branch on the
  // combination (B7 arm, the branchless combo gadget).
  var flags = 0;
  if (in(pos + 1) & 1) { flags = flags + 1; }
  if (in(pos + 2) & 2) { flags = flags + 2; }
  if (in(pos + 3) & 4) { flags = flags + 4; }
  if (in(pos + 4) & 8) { flags = flags + 8; }
  if (in(pos + 5) & 16) { flags = flags + 16; }
  if (in(pos + 6) & 32) { flags = flags + 32; }
  fontv[flags] = fontv[flags] + 300;
  return pos + 7;
}

fn finish_fonts() {
  // B7: three occurrences of the 0x29 flag combination overflow fonttab.
  var v = fontv[0x29];
  fonttab[v / 301] = 1;
  return v;
}

fn object_slot(gen) {
  if (gen % 7 == 0 && gen > 0) {
    return 14 + gen % 9;          // rare recycled-slot path: up to 22
  }
  return gen % 14;
}

fn main() {
  if (len() < 5) { return 0; }
  if (in(0) != '%' || in(1) != 'P' || in(2) != 'D' || in(3) != 'F') {
    return 0;
  }
  var pos = 4;
  var cursor = 0;
  var nibble = 0;
  var depth = 0;
  var slot = 0;
  while (pos < len()) {
    var c = in(pos);
    if (c == 'x') {
      parse_xref(pos + 1, in(pos + 1));
      pos = pos + 2;
    } else if (c == '/') {
      pos = parse_name(pos + 1);
    } else if (c == 'o') {
      var gen = in(pos + 1);
      slot = object_slot(gen);
      pos = pos + 2;
    } else if (c == 'R') {
      xref[slot] = pos;           // B3: recycled slot in [20, 22] escapes
      pos = pos + 1;
    } else if (c == 's') {
      var nf = in(pos + 1) & 7;
      cursor = cursor + nf;
      if (in(pos + 2) != 'h') {
        if (cursor > 20) { cursor = 20; }
      }
      text[cursor] = c;           // B4: unclamped on the hex path
      pos = pos + 3;
    } else if (c == '<') {
      if (in(pos + 1) == '<') {
        dstack[depth] = pos;      // B6: depth unchecked past 6
        depth = depth + 1;
        pos = pos + 2;
      } else {
        nibble = 1 - nibble;
        pos = pos + 1;
      }
    } else if (c == '>') {
      if (nibble == 1) {
        text[cursor + 1] = 0xf;   // B5: pending nibble at cursor limit
        nibble = 0;
      }
      if (depth > 0) { depth = depth - 1; }
      pos = pos + 1;
    } else if (c == 'F') {
      pos = parse_font_flags(pos);
    } else {
      pos = pos + 1;
    }
  }
  finish_fonts();
  pstate[0] = cursor;
  return depth;
}
)ml";
  S.Seeds = {
      bytes("%PDF-1.4 o\x06R /Name <<x\x05"
            "abcde>> s\x03h <ff> 2 0 R"),
      bytes("%PDF o\x0d s\x02q <<<</K /V>>>> xref x\x08 trailer"),
  };
  return S;
}

} // namespace targets
} // namespace pathfuzz
