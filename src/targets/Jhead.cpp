//===- Jhead.cpp - jhead subject (JPEG/EXIF marker scanner analogue) ----------===//
//
// Part of the pathfuzz project.
//
// Mimics jhead's JPEG marker scan and EXIF tag walk. The paper finds 6
// bugs here, shared by essentially every fuzzer; accordingly most of the
// planted bugs are "plain" (one branch chain away from a seed).
//   B1 (plain): orientation tag slot computed modulo 24 into a 16-cell
//      table.
//   B2 (plain): comment segments trust the declared length when copying.
//   B3 (plain): thumbnail offset arithmetic underflows the table index.
//   B4 (path-gated): a density tag only corrupts state when the units
//      byte took the rare '2' path in a prior tag of the same IFD.
//
//===----------------------------------------------------------------------===//

#include "targets/Targets.h"

namespace pathfuzz {
namespace targets {

Subject makeJhead() {
  Subject S;
  S.Name = "jhead";
  S.Source = R"ml(
// jhead: EXIF header inspector analogue.
global tags[16];
global comment[24];
global state[4];

fn parse_comment(pos, seglen) {
  var n = seglen - 2;
  if (n > 40) { n = 40; }
  var i = 0;
  while (i < n && pos + i < len()) {
    comment[i] = in(pos + i);     // B2: n can reach 40 > 24
    i = i + 1;
  }
  return i;
}

fn parse_exif(pos, seglen) {
  if (seglen < 8) { return 0; }
  var count = in(pos);
  if (count > 12) { count = 12; }
  var off = pos + 1;
  var i = 0;
  var units = 0;
  while (i < count && off + 3 <= len()) {
    var tag = in(off);
    var val = in(off + 1) * 256 + in(off + 2);
    if (tag == 1) {
      tags[0] = val;
    } else if (tag == 2) {
      var slot = val % 24;
      if (in(off + 3) == 0x2a) {
        tags[slot] = 1;           // B1: slot in [16, 23] overflows
      }
    } else if (tag == 3) {
      units = in(off + 3);        // remembered for later tags
    } else if (tag == 4) {
      if (units == 2) {
        // B4: only after a tag-3 entry set units to 2 along this IFD
        tags[14 + (val % 5)] = val;  // 14 + [0,4] -> up to 18, overflows
      } else {
        tags[14] = val;
      }
    } else if (tag == 5) {
      var toff = val - 256;
      if (toff > -20 && toff < 12) {
        tags[toff + 4] = 9;       // B3: toff in (-20,-4] underflows
      }
    }
    off = off + 4;
    i = i + 1;
  }
  return i;
}

fn main() {
  if (len() < 4) { return 0; }
  if (in(0) != 0xff || in(1) != 0xd8) { return 0; }
  var pos = 2;
  var segs = 0;
  while (pos + 4 <= len() && segs < 32) {
    if (in(pos) != 0xff) { pos = pos + 1; continue; }
    var marker = in(pos + 1);
    var seglen = in(pos + 2) * 256 + in(pos + 3);
    if (marker == 0xe1) {
      parse_exif(pos + 4, seglen);
    } else if (marker == 0xfe) {
      parse_comment(pos + 4, seglen);
    } else if (marker == 0xd9) {
      break;
    }
    if (seglen < 2) { seglen = 2; }
    if (seglen > 80) { seglen = 80; }
    pos = pos + 2 + seglen;
    segs = segs + 1;
  }
  return segs;
}
)ml";
  S.Seeds = {
      bytes({0xff, 0xd8, 0xff, 0xe1, 0x00, 0x10, 3, 1, 0x00, 0x10, 0x2a, 2,
             0x00, 0x05, 0x2a, 3, 0x00, 0x00, 0x01, 0xff, 0xd9}),
      bytes({0xff, 0xd8, 0xff, 0xfe, 0x00, 0x08, 'h', 'i', '!', 0, 0xff,
             0xd9}),
  };
  return S;
}

} // namespace targets
} // namespace pathfuzz
