//===- Sqlite3.cpp - sqlite3 subject (SQL tokenizer/VM analogue) --------------===//
//
// Part of the pathfuzz project.
//
// Mimics sqlite3's SQL tokenizer and a small statement "VM". The paper
// shows pcguard ahead of the path-aware fuzzers here (9 vs 5-7 bugs):
// the planted bugs sit behind *breadth* (many distinct statement kinds),
// which favors raw coverage reach over deep path re-exploration.
//   B1 (plain): string literals copied with the raw quoted length.
//   B2 (plain): column list index from the raw column count.
//   B3 (plain): PRAGMA values index the pragma table modulo 12.
//   B4 (deep): nested SELECT depth beyond the cursor stack.
//   B5 (path-gated): a JOIN after an ON-clause path leaves a dangling
//      cursor index used by the next FROM.
//   B6/B7 (deep chains): WITH/WHERE keyword chains hide OOB writes behind
//      three/four distinct byte checks (breadth bugs, pcguard-leaning).
//
//===----------------------------------------------------------------------===//

#include "targets/Targets.h"

namespace pathfuzz {
namespace targets {

Subject makeSqlite3() {
  Subject S;
  S.Name = "sqlite3";
  S.Source = R"ml(
// sqlite3: SQL engine analogue.
global strbuf[16];
global cols[10];
global pragmas[8];
global cursors[6];
global sstate[8];

fn copy_string(pos) {
  var j = 0;
  while (pos + j < len() && in(pos + j) != 0x27 && j < 24) {
    strbuf[j] = in(pos + j);      // B1: up to 24 chars into 16 cells
    j = j + 1;
  }
  return pos + j + 1;
}

fn parse_columns(pos, count) {
  var i = 0;
  while (i < count && i < 14) {
    cols[i] = in(pos + i);        // B2: count caps at 14 > 9
    i = i + 1;
  }
  return i;
}

fn parse_select(pos, depth) {
  if (depth > 8) {
    cursors[depth - 4] = pos;     // B4: depth >= 10 escapes the stack
  } else {
    cursors[depth % 6] = pos;
  }
  var i = pos;
  while (i < len()) {
    var c = in(i);
    if (c == '(') {
      i = parse_select(i + 1, depth + 1);
    } else if (c == ')') {
      return i + 1;
    } else if (c == 'J') {
      // JOIN: cursor from the ON-clause state
      if (sstate[2] == 1) {
        cursors[sstate[3]] = i;   // B5: sstate[3] set unchecked on ON path
      } else {
        cursors[0] = i;
      }
    } else if (c == 'O') {
      sstate[2] = 1;
      sstate[3] = in(i + 1) % 9;  // can exceed 5
    }
    i = i + 1;
  }
  return i;
}

fn main() {
  if (len() < 3) { return 0; }
  var pos = 0;
  var stmts = 0;
  while (pos < len() && stmts < 32) {
    var c = in(pos);
    if (c == 'S') {
      pos = parse_select(pos + 1, 0);
    } else if (c == 0x27) {
      pos = copy_string(pos + 1);
    } else if (c == 'C') {
      parse_columns(pos + 1, in(pos + 1) & 15);
      pos = pos + 2;
    } else if (c == 'P') {
      var pv = in(pos + 1);
      pragmas[pv % 12] = pv;      // B3: pv % 12 in [8, 11]
      pos = pos + 2;
    } else if (c == 'W') {
      // WITH RECURSIVE handling: a deep chain of keyword byte checks
      // (B6/B7) — breadth bugs favoring the focused edge-coverage queue,
      // matching the paper's pcguard advantage on sqlite3.
      if (in(pos + 1) == 'I') {
        if (in(pos + 2) == 'T') {
          if (in(pos + 3) == 'H') {
            cursors[in(pos + 4) & 7] = pos;   // B6: OOB for values in [6, 7]
          }
        }
      } else if (in(pos + 1) == 'H') {
        if (in(pos + 2) == 'E') {
          if (in(pos + 3) == 'R') {
            if (in(pos + 4) == 'E') {
              pragmas[6 + (in(pos + 5) & 3)] = 1; // B7: OOB at 8/9
            }
          }
        }
      }
      pos = pos + 1;
    } else if (c == ';') {
      sstate[2] = 0;
      stmts = stmts + 1;
      pos = pos + 1;
    } else {
      pos = pos + 1;
    }
  }
  return stmts;
}
)ml";
  S.Seeds = {
      bytes("SELECT (S a J b O3) ; C\x05 x y z ; P\x02 ; 'str'"),
      bytes("S((S))J; 'abcdef'; P\x09"),
  };
  return S;
}

} // namespace targets
} // namespace pathfuzz
