//===- Objdump.cpp - objdump subject (disassembler analogue) ------------------===//
//
// Part of the pathfuzz project.
//
// Mimics binutils objdump's opcode decode loop. The paper's best subject
// for the culling strategy (12 bugs for cull vs 8 for pcguard); the
// planted mix leans towards path-gated and progression bugs that reward
// sustained exploration of already-covered decode paths:
//   B1 (plain): immediate-operand displacement indexes the reloc table.
//   B2 (path-gated): prefix 0x66 switches operand width; a following
//      MOV-class opcode with the wide width writes past the operand log.
//   B3 (progression): nested prefix count creeps per instruction and is
//      never reset on the error path; the prefix stack overflows.
//   B4 (path-gated): jump targets are cached only along the
//      (conditional && backwards) path; a later 'X' opcode uses the
//      unvalidated cached slot.
//   B5 (plain): division by a zero scale byte on the SIB path.
//   B6 (path-gated, branchless): extended-opcode flag combinations bump a
//      per-combo counter; three 0x31 combos in one section overflow the
//      extension table. Only per-path hit counts ladder towards it.
//
//===----------------------------------------------------------------------===//

#include "targets/Targets.h"

namespace pathfuzz {
namespace targets {

Subject makeObjdump() {
  Subject S;
  S.Name = "objdump";
  S.Source = R"ml(
// objdump: disassembler analogue.
global relocs[16];
global operands[12];
global prefixes[10];
global jcache[8];
global dstate[4];
global extv[64];
global exttab[2];

fn decode_sib(pos) {
  var sib = in(pos);
  var scale = (sib >> 6) & 3;
  var base = sib & 7;
  return base * 64 / scale;       // B5: scale == 0 divides by zero
}

fn decode_extended(pos) {
  // Two-byte opcodes: six modrm/rex-style decisions per instruction with
  // no branch on the combination (B6 arm).
  var flags = 0;
  if (in(pos + 1) & 1) { flags = flags + 1; }
  if (in(pos + 2) & 2) { flags = flags + 2; }
  if (in(pos + 3) & 4) { flags = flags + 4; }
  if (in(pos + 4) & 8) { flags = flags + 8; }
  if (in(pos + 5) & 16) { flags = flags + 16; }
  if (in(pos + 6) & 32) { flags = flags + 32; }
  extv[flags] = extv[flags] + 300;
  return 7;
}

fn finish_decode() {
  // B6: three 0x31-combo extended opcodes in one section overflow exttab.
  var v = extv[0x31];
  exttab[v / 301] = 1;
  return v;
}

fn decode_one(pos, width) {
  var op = in(pos);
  if (op == 0x89 || op == 0x8b) {
    operands[4 + width * 5] = op; // B2: width 2 lands at 14 > 11
    return 2;
  }
  if (op == 0xe8) {
    var disp = in(pos + 1);
    relocs[disp % 20] = pos;      // B1: disp % 20 in [16, 19]
    return 3;
  }
  if (op == 0x70) {
    var target = in(pos + 1);
    if (target > 128) {           // conditional && backwards
      dstate[1] = target % 11;    // cached, unvalidated (B4 arm)
    }
    return 2;
  }
  if (op == 'X') {
    jcache[dstate[1]] = pos;      // B4: cached slot in [8, 10] escapes
    return 1;
  }
  if (op == 0xf4) {
    return decode_sib(pos + 1);
  }
  if (op == 0x0f) {
    return decode_extended(pos);
  }
  return 1;
}

fn main() {
  if (len() < 6) { return 0; }
  if (in(0) != 0x7f || in(1) != 'E' || in(2) != 'L' || in(3) != 'F') {
    return 0;
  }
  var pos = 4;
  var npfx = 0;
  var insns = 0;
  while (pos + 2 <= len() && insns < 80) {
    var b = in(pos);
    var width = 1;
    if (b == 0x66) {
      width = 2;
      npfx = npfx + 1;
      prefixes[npfx] = b;         // B3: npfx never reset on the error path
      pos = pos + 1;
      b = in(pos);
    }
    var adv = decode_one(pos, width);
    if (adv <= 0) {
      // decode error: resync without resetting prefix state (B3 arm)
      pos = pos + 1;
    } else {
      if (b != 0x66) { npfx = 0; }
      pos = pos + adv;
    }
    insns = insns + 1;
  }
  finish_decode();
  return insns;
}
)ml";
  // Seeds exercise the decode loop without tripping any planted bug.
  S.Seeds = {
      bytes({0x7f, 'E', 'L', 'F', 0x89, 0x00, 0xe8, 0x05, 0x70, 0x60, 'X',
             0xf4, 0x41, 0x01, 0x02}),
      bytes({0x7f, 'E', 'L', 'F', 0x8b, 0x01, 0xe8, 0x0a, 0x70, 0x90, 0x90,
             0x00, 0x00}),
  };
  return S;
}

} // namespace targets
} // namespace pathfuzz
