//===- Flvmeta.cpp - flvmeta subject (FLV tag walker analogue) ----------------===//
//
// Part of the pathfuzz project.
//
// Mimics flvmeta's FLV tag walk + script-data metadata extraction.
// Planted bugs:
//   B1 (plain): audio tags with dsize == 0 and a large timestamp write at
//      meta[ts % 40], overflowing the 32-cell table for ts % 40 >= 32.
//   B2 (path-gated): parse_script only leaves the key-length unclamped on
//      the (mode == 2 && dsize > 16) path; combining that path with
//      klen >= 24 overflows the copy destination.
//
//===----------------------------------------------------------------------===//

#include "targets/Targets.h"

namespace pathfuzz {
namespace targets {

Subject makeFlvmeta() {
  Subject S;
  S.Name = "flvmeta";
  S.Source = R"ml(
// flvmeta: FLV metadata extractor analogue.
global meta[32];
global stats[8];

fn read_u16(pos) {
  return in(pos) * 256 + in(pos + 1);
}

fn parse_script(pos, dsize) {
  var klen = in(pos);
  if (klen < 0) { return 0; }
  var mode = in(pos + 1);
  var lim;
  if (mode == 2 && dsize > 16) {
    lim = klen;                   // rare path: no clamping
  } else {
    lim = 20;
  }
  if (klen < lim) { lim = klen; }
  var i = 0;
  while (i < lim) {
    meta[8 + i] = in(pos + 2 + i); // B2: 8 + i >= 32 when lim >= 24
    i = i + 1;
  }
  stats[1] = stats[1] + 1;
  return i;
}

fn main() {
  if (len() < 9) { return 0; }
  if (in(0) != 'F' || in(1) != 'L' || in(2) != 'V') { return 1; }
  var flags = in(4);
  var pos = 9;
  var tags = 0;
  while (pos + 11 <= len() && tags < 48) {
    var type = in(pos);
    var dsize = read_u16(pos + 1);
    var ts = in(pos + 3);
    if (type == 18) {
      parse_script(pos + 11, dsize);
    } else if (type == 8 || type == 9) {
      if (dsize == 0 && ts > 100) {
        meta[ts % 40] = 1;        // B1: ts % 40 in [32, 39] overflows
      }
      stats[0] = stats[0] + 1;
    }
    if (dsize > 64) { dsize = 64; }
    pos = pos + 11 + dsize + 4;
    tags = tags + 1;
  }
  return tags;
}
)ml";
  S.Seeds = {
      bytes({'F', 'L', 'V', 1, 5, 0, 0, 0, 9, 18, 0, 4, 0, 0, 0, 0, 0, 0, 0,
             0, 2, 1, 'k', 'v', 0, 0, 0, 15}),
      bytes({'F', 'L', 'V', 1, 1, 0, 0, 0, 9, 8, 0, 0, 50, 0, 0, 0, 0, 0, 0,
             0, 0, 0, 0, 0, 0}),
  };
  return S;
}

} // namespace targets
} // namespace pathfuzz
