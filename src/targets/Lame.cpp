//===- Lame.cpp - lame subject (MP3 encoder analogue) --------------------------===//
//
// Part of the pathfuzz project.
//
// Mimics LAME's frame encoding loop with bit-reservoir bookkeeping. Like
// infotocap, this subject exhibits heavy queue explosion under path
// feedback (Table I: 69,590 vs 2,151): the psychoacoustic model takes
// many independent per-band decisions per frame, and the reservoir value
// threads state across frames. Planted bugs:
//   B1 (progression): the bit reservoir creeps upward when frames
//      repeatedly take the short-block path; the reservoir table write
//      overflows at saturation.
//   B2 (plain): granule index combines a header nibble with the mode,
//      reaching past the granule table for high nibble + stereo mode.
//   B3 (path-gated): the VBR path leaves the scale factor unclamped only
//      when (mode == 1 && band 4 active); with an 'S' tag the write
//      escapes the scalefac table.
//   B4 (plain): zero sample rate divides the frame-time computation.
//   B5 (path-gated, branchless): VBR tag flag combos bump per-combo
//      counters; three 0x15 combos in one stream overflow vbrtab.
//
//===----------------------------------------------------------------------===//

#include "targets/Targets.h"

namespace pathfuzz {
namespace targets {

Subject makeLame() {
  Subject S;
  S.Name = "lame";
  S.Source = R"ml(
// lame: MP3 encoder analogue.
global reservoir[24];
global scalefac[18];
global granules[20];
global bands[8];
global vbrv[32];
global vbrtab[2];

fn psy_model(b) {
  // Independent band activations: many acyclic paths per frame.
  var act = 0;
  if (b & 1) { bands[0] = 1; act = act + 1; }
  if (b & 2) { bands[1] = 1; act = act + 1; }
  if (b & 4) { bands[2] = 1; act = act + 1; }
  if (b & 8) { bands[3] = 1; act = act + 1; }
  if (b & 16) { bands[4] = 1; act = act + 1; }
  if (b & 32) { bands[5] = 1; act = act + 1; }
  if (b & 64) { bands[6] = 1; act = act + 1; }
  return act;
}

fn parse_vbr_tag(pos) {
  // VBR header bits: five independent decisions, branchless combination
  // (B5 arm).
  var flags = 0;
  if (in(pos + 1) & 1) { flags = flags + 1; }
  if (in(pos + 2) & 2) { flags = flags + 2; }
  if (in(pos + 3) & 4) { flags = flags + 4; }
  if (in(pos + 4) & 8) { flags = flags + 8; }
  if (in(pos + 5) & 16) { flags = flags + 16; }
  vbrv[flags] = vbrv[flags] + 300;
  return pos + 6;
}

fn finish_vbr() {
  // B5: three 0x15-combo VBR tags in one stream overflow vbrtab.
  var v = vbrv[0x15];
  vbrtab[v / 301] = 1;
  return v;
}

fn encode_granule(pos, mode, resv) {
  var sf = in(pos) & 31;
  var clamp;
  if (mode == 1 && (in(pos + 1) & 16)) {
    clamp = 0;                    // rare VBR path: unclamped
  } else {
    clamp = 1;
  }
  if (clamp == 1 && sf > 15) { sf = 15; }
  if (in(pos + 2) == 'S') {
    scalefac[sf] = resv;          // B3: sf in [18, 31] only on the VBR path
  } else {
    scalefac[sf % 16] = resv;
  }
  return sf;
}

fn main() {
  if (len() < 6) { return 0; }
  if (in(0) != 0xff || (in(1) & 0xe0) != 0xe0) { return 0; }
  var srate = in(2) & 3;
  if (srate == 3) { return 1; }
  var tpf = 26000 / (srate * 7 % 5); // B4: srate * 7 % 5 == 0 when srate == 0
  var pos = 3;
  var resv = 0;
  var frames = 0;
  while (pos + 4 <= len() && frames < 48) {
    var hdr = in(pos);
    if (hdr == 'V') {
      pos = parse_vbr_tag(pos);
      frames = frames + 1;
      continue;
    }
    var mode = hdr & 3;
    var gr = (hdr >> 2) & 15;
    granules[gr + mode * 2] = frames; // B2: gr + 2*mode reaches 21 > 19
    psy_model(in(pos + 1));
    if (mode == 2) {
      resv = resv + 3;            // short blocks grow the reservoir
    } else if (mode == 3) {
      resv = resv - 2;
      if (resv < 0) { resv = 0; }
    } else {
      resv = resv + 1;
    }
    if (resv > 23) {
      reservoir[resv] = frames;   // B1: resv == 24 escapes at saturation
      resv = 23;
    } else {
      reservoir[resv] = frames;
    }
    encode_granule(pos + 1, mode, resv);
    pos = pos + 3 + (in(pos + 2) % 5);
    frames = frames + 1;
  }
  finish_vbr();
  return frames;
}
)ml";
  S.Seeds = {
      bytes({0xff, 0xe1, 0x01, 0x06, 0x13, 'S', 0x0a, 0x22, 0x00, 0x06,
             0x51, 0x00, 0x0e, 0x33, 'S', 0x00}),
      bytes({0xff, 0xe2, 0x02, 0x0b, 0x7f, 0x00, 0x07, 0x15, 0x00, 0x00}),
  };
  return S;
}

} // namespace targets
} // namespace pathfuzz
