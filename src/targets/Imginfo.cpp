//===- Imginfo.cpp - imginfo subject (JasPer format dispatcher analogue) ------===//
//
// Part of the pathfuzz project.
//
// Mimics JasPer imginfo's magic-based format dispatch (a switch over the
// detected codec). Planted bugs (the paper finds 2-3 here):
//   B1 (plain): the PNM comment scanner writes into a fixed buffer with
//      the raw comment length.
//   B2 (path-gated): the JP2 box reader enables an "extended length" mode
//      only on the (boxlen == 1) path; a later 'c' box then indexes the
//      box table with the unchecked extended length.
//
//===----------------------------------------------------------------------===//

#include "targets/Targets.h"

namespace pathfuzz {
namespace targets {

Subject makeImginfo() {
  Subject S;
  S.Name = "imginfo";
  S.Source = R"ml(
// imginfo: image format inspector analogue.
global boxes[16];
global cbuf[12];
global info[4];

fn scan_pnm(pos) {
  var i = pos;
  while (i < len()) {
    var c = in(i);
    if (c == '#') {
      var j = 0;
      while (i + 1 + j < len() && in(i + 1 + j) != '\n' && j < 20) {
        cbuf[j] = in(i + 1 + j);  // B1: comment up to 20 chars into 12 cells
        j = j + 1;
      }
      i = i + 1 + j;
    } else if (c == 'P') {
      info[0] = info[0] + 1;
      i = i + 1;
    } else {
      i = i + 1;
    }
  }
  return info[0];
}

fn scan_jp2(pos) {
  var extended = 0;
  var p = pos;
  var nbox = 0;
  while (p + 2 <= len() && nbox < 24) {
    var boxlen = in(p);
    var boxtype = in(p + 1);
    if (boxlen == 1) {
      extended = in(p + 2) & 31;  // rare: extended-length mode
      boxlen = 2;
    }
    if (boxtype == 'c') {
      if (extended > 0) {
        boxes[extended] = p;      // B2: extended in [16, 31] overflows
      } else {
        boxes[nbox % 16] = p;
      }
    }
    if (boxlen < 2) { boxlen = 2; }
    p = p + boxlen % 9 + 1;
    nbox = nbox + 1;
  }
  return nbox;
}

fn main() {
  if (len() < 4) { return 0; }
  var m0 = in(0);
  var m1 = in(1);
  if (m0 == 'P' && m1 >= '1' && m1 <= '6') {
    return scan_pnm(2);
  }
  if (m0 == 0x00 && m1 == 0x00 && in(2) == 0x0c) {
    return scan_jp2(3);
  }
  if (m0 == 0xff && m1 == 0x4f) {
    info[2] = 1;                  // raw codestream: header only
    return 2;
  }
  return -1;
}
)ml";
  S.Seeds = {
      bytes("P5 4 4 255 # a comment\n0123456789abcdef"),
      bytes({0x00, 0x00, 0x0c, 3, 'c', 0, 1, 'c', 9, 0, 5, 'c', 0, 0}),
  };
  return S;
}

} // namespace targets
} // namespace pathfuzz
