//===- Mp42aac.cpp - mp42aac subject (MP4 box walker analogue) ----------------===//
//
// Part of the pathfuzz project.
//
// Mimics Bento4 mp42aac's ISO-BMFF box tree walk. The paper credits this
// subject with zero-days found only by the path-aware fuzzers; the
// hardest planted bug here (B4) follows that shape. Planted bugs:
//   B1 (plain): a box size smaller than the header underflows the payload
//      length when the 0x77 extension marker is present.
//   B2 (plain): sample-table entry count trusted within one byte.
//   B3 (path-gated): 'trak' boxes nested under a 'moov' with version 1
//      take a wide-entry path; an 'stsc' there indexes with the wide
//      stride.
//   B5 (path-gated, branchless, hardest): 'udta' boxes take seven
//      independent flag decisions; three 0x5a-combo boxes in one file
//      overflow udtab. No branch tests the combination.
//   B4 (path-gated + progression): each 'esds' box bumps a descriptor
//      cursor only when the previous box on this level was 'stsd'
//      (ordering state); after three such pairs a final 'Z' tag writes
//      past the descriptor table. Edge coverage sees nothing new while
//      the cursor creeps.
//
//===----------------------------------------------------------------------===//

#include "targets/Targets.h"

namespace pathfuzz {
namespace targets {

Subject makeMp42aac() {
  Subject S;
  S.Name = "mp42aac";
  S.Source = R"ml(
// mp42aac: MP4-to-AAC extractor analogue.
global samples[16];
global stsc[12];
global desc[8];
global mstate[4];
global udta[128];
global udtab[2];

fn parse_stsc(pos, count, wide) {
  var stride;
  if (wide == 1) { stride = 3; } else { stride = 1; }
  var i = 0;
  while (i < count && i < 4) {
    stsc[i * stride + (in(pos + i) & 3)] = i;  // B3: 3*3 + 3 = 12 overflows wide
    i = i + 1;
  }
  return i;
}

fn parse_stbl(pos, count) {
  var i = 0;
  while (i < count && pos + i < len()) {
    samples[i] = in(pos + i);     // B2: count up to 255, table has 16
    i = i + 1;
  }
  return i;
}

fn parse_udta(pos) {
  // User-data boxes: SEVEN independent flag decisions (128 combos) with
  // no branch on the combination — the hardest planted bug (B5), the
  // analogue of the paper's mp42aac zero-days that only the path-aware
  // fuzzers exposed.
  var flags = 0;
  if (in(pos + 1) & 1) { flags = flags + 1; }
  if (in(pos + 2) & 2) { flags = flags + 2; }
  if (in(pos + 3) & 4) { flags = flags + 4; }
  if (in(pos + 4) & 8) { flags = flags + 8; }
  if (in(pos + 5) & 16) { flags = flags + 16; }
  if (in(pos + 6) & 32) { flags = flags + 32; }
  if (in(pos + 7) & 64) { flags = flags + 64; }
  udta[flags] = udta[flags] + 300;
  return pos + 8;
}

fn finish_udta() {
  // B5: three 0x5a-combo udta boxes in one file overflow udtab.
  var v = udta[0x5a];
  udtab[v / 301] = 1;
  return v;
}

fn walk(pos, depth, version) {
  var prev = 0;
  while (pos + 3 <= len() && depth < 12) {
    var size = in(pos);
    var type = in(pos + 1);
    if (size < 2 && in(pos + 2) == 0x77) {
      var payload = size - 2;     // B1: payload underflows to -2 / -1
      samples[payload + 17] = size;  // index 15/16: OOB write at 16
    }
    if (type == 'm') {
      version = in(pos + 2) & 1;
      walk(pos + 3, depth + 1, version);
    } else if (type == 't') {
      walk(pos + 2, depth + 1, version);
    } else if (type == 's') {
      parse_stsc(pos + 2, in(pos + 2) & 7, version);
      prev = 's';
    } else if (type == 'd') {
      if (prev == 's') {
        mstate[0] = mstate[0] + 3;  // descriptor cursor creeps (B4 arm)
      }
      prev = 'd';
    } else if (type == 'Z') {
      desc[mstate[0]] = depth;    // B4: cursor >= 8 after three s/d pairs
      prev = 0;
    } else if (type == 'b') {
      parse_stbl(pos + 2, in(pos + 2));
      prev = 0;
    } else if (type == 'u') {
      parse_udta(pos + 1);
      prev = 0;
    } else {
      prev = 0;
    }
    if (size < 2) { size = 2; }
    pos = pos + size % 11 + 2;
  }
  return pos;
}

fn main() {
  if (len() < 8) { return 0; }
  if (in(4) != 'f' || in(5) != 't' || in(6) != 'y' || in(7) != 'p') {
    return 0;
  }
  walk(8, 0, 0);
  finish_udta();
  return mstate[0];
}
)ml";
  S.Seeds = {
      bytes({4, 0, 0, 0, 'f', 't', 'y', 'p', 4, 'm', 1, 0, 3, 's', 2, 0, 2,
             'd', 0, 3, 'Z', 0, 2, 'b', 4, 1, 2, 3, 4}),
      bytes({4, 0, 0, 0, 'f', 't', 'y', 'p', 3, 't', 0, 5, 's', 3, 1, 2, 0,
             0}),
  };
  return S;
}

} // namespace targets
} // namespace pathfuzz
