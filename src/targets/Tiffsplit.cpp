//===- Tiffsplit.cpp - tiffsplit subject (TIFF IFD walker analogue) -----------===//
//
// Part of the pathfuzz project.
//
// Mimics libtiff tiffsplit's IFD entry walk. The paper records very high
// *unique crash* counts here relative to unique bugs (34-55 crashes over
// 5-6 bugs): the planted bugs are reachable from several distinct call
// chains, so one root cause yields many distinct stack hashes.
//   B1 (plain): entry count trusted within a byte (two call sites).
//   B2 (plain): strip offsets indexed by the raw strip number (reachable
//      from both the strip and the tile reader).
//   B3 (path-gated): BigTIFF mode widens the tag stride only on the
//      (magic 43 && version 8) path; the tag table write then escapes.
//   B4 (path-gated, branchless): GeoTIFF key flag combos bump per-combo
//      counters; three 0x13 combos in one file overflow geotab.
//
//===----------------------------------------------------------------------===//

#include "targets/Targets.h"

namespace pathfuzz {
namespace targets {

Subject makeTiffsplit() {
  Subject S;
  S.Name = "tiffsplit";
  S.Source = R"ml(
// tiffsplit: TIFF splitter analogue.
global entries[18];
global strips[12];
global tagtab[16];
global tstate[4];
global geov[32];
global geotab[2];

fn read_entries(pos, count) {
  var i = 0;
  while (i < count && pos + i < len()) {
    entries[i] = in(pos + i);     // B1: raw byte count into 18 cells
    i = i + 1;
  }
  return i;
}

fn store_strip(n, v) {
  strips[n] = v;                  // B2: callers pass raw strip numbers
  return n;
}

fn read_strips(pos) {
  var n = in(pos) & 15;
  store_strip(n, pos);            // B2 via strips: n up to 15 > 11
  return pos + 1;
}

fn read_tiles(pos) {
  var n = in(pos) & 31;
  if (n > 13) {
    store_strip(n - 2, pos);      // B2 via tiles: a second call chain
  } else {
    store_strip(n % 12, pos);
  }
  return pos + 2;
}

fn read_geokeys(pos) {
  // GeoTIFF key flags: five branchless combination decisions (B4 arm).
  var flags = 0;
  if (in(pos + 1) & 1) { flags = flags + 1; }
  if (in(pos + 2) & 2) { flags = flags + 2; }
  if (in(pos + 3) & 4) { flags = flags + 4; }
  if (in(pos + 4) & 8) { flags = flags + 8; }
  if (in(pos + 5) & 16) { flags = flags + 16; }
  geov[flags] = geov[flags] + 300;
  return flags;
}

fn finish_geokeys() {
  // B4: three 0x13-combo geokey directories overflow geotab.
  var v = geov[0x13];
  geotab[v / 301] = 1;
  return v;
}

fn walk_ifd(pos, big) {
  var stride;
  if (big == 1) { stride = 3; } else { stride = 1; }
  var count = in(pos) & 7;
  var i = 0;
  while (i < count) {
    var tag = in(pos + 1 + i);
    tagtab[i * stride + (tag & 1)] = tag; // B3: 6*3+1 = 19 > 15 in BigTIFF
    if (tag == 0x11) {
      read_strips(pos + 2 + i);
    } else if (tag == 0x45) {
      read_tiles(pos + 2 + i);
    } else if (tag == 0xfe) {
      read_entries(pos + 2 + i, in(pos + 2 + i));
    } else if (tag == 0x83) {
      read_geokeys(pos + 1 + i);
    }
    i = i + 1;
  }
  return pos + count + 1;
}

fn main() {
  if (len() < 6) { return 0; }
  if (in(0) != 'I' || in(1) != 'I') { return 0; }
  var magic = in(2);
  var big = 0;
  if (magic == 43 && in(3) == 8) {
    big = 1;                      // BigTIFF path
  } else if (magic != 42) {
    return 1;
  }
  var pos = 4;
  var ifds = 0;
  while (pos + 2 <= len() && ifds < 24) {
    pos = walk_ifd(pos, big);
    ifds = ifds + 1;
    if (in(pos) == 0) { break; }
  }
  finish_geokeys();
  return ifds;
}
)ml";
  S.Seeds = {
      bytes({'I', 'I', 42, 0, 3, 0x11, 0x05, 0x45, 0x0c, 0xfe, 0x04, 1, 2,
             3, 4, 5}),
      bytes({'I', 'I', 43, 8, 2, 0x11, 0x09, 0x45, 0x10, 0, 0, 0}),
  };
  return S;
}

} // namespace targets
} // namespace pathfuzz
