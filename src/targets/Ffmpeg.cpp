//===- Ffmpeg.cpp - ffmpeg subject (packet demuxer analogue) ------------------===//
//
// Part of the pathfuzz project.
//
// Mimics a container demuxer + codec dispatch. The paper finds only 2-3
// bugs here despite ffmpeg's size; the planted bugs are correspondingly
// hard:
//   B1 (deep): the PCM path divides by a rate derived from two separate
//      header bytes; zero only for one byte combination.
//   B2 (path-gated): video frames reserve a slot with stride 3 only on
//      the (keyframe && size % 5 == 0) path; with a 'Q' payload marker and
//      size % 8 == 7 (e.g. size == 15) the write lands past the table.
//   B3 (deep chain): codec-private packets hide an OOB write behind three
//      distinct byte checks (breadth bug, pcguard-leaning).
//
//===----------------------------------------------------------------------===//

#include "targets/Targets.h"

namespace pathfuzz {
namespace targets {

Subject makeFfmpeg() {
  Subject S;
  S.Name = "ffmpeg";
  S.Source = R"ml(
// ffmpeg: container demuxer analogue.
global frames[24];
global audio[16];
global counters[4];

fn decode_audio(pos, size) {
  var rate = in(pos) * 4 - in(pos + 1);
  var fmt = in(pos + 2) & 3;
  if (fmt == 1) {
    if (size < 3) { return 0; }
    var samples = size * 1000 / rate;   // B1: rate == 0 iff in(pos)*4 == in(pos+1)
    audio[samples % 16] = 1;
    return samples;
  }
  audio[fmt] = audio[fmt] + 1;
  return 0;
}

fn decode_video(pos, size, key) {
  var stride;
  if (key == 1 && size % 5 == 0) {
    stride = 3;                   // rare reservation path
  } else {
    stride = 1;
  }
  var slot = (size % 8) * 2;
  counters[1] = slot + stride * 3;
  if (in(pos) == 'Q') {
    frames[counters[1] + 1] = size;  // B2: 14 + 9 + 1 = 24 overflows
  } else {
    frames[slot] = size;
  }
  return slot;
}

fn main() {
  if (len() < 8) { return 0; }
  if (in(0) != 'R' || in(1) != 'I' || in(2) != 'F') { return 0; }
  var pos = 4;
  var pkts = 0;
  while (pos + 6 <= len() && pkts < 40) {
    var kind = in(pos);
    var size = in(pos + 1);
    var key = in(pos + 2) & 1;
    if (kind == 0x41) {
      decode_audio(pos + 3, size);
    } else if (kind == 0x56) {
      decode_video(pos + 3, size, key);
    } else if (kind == 0x53) {
      counters[2] = counters[2] + size;
    } else if (kind == 0x4c) {
      // Codec private data: a deep chain of distinct byte checks (B3, a
      // breadth bug favoring the edge-coverage fuzzer's focused queue).
      if (in(pos + 3) == 0x9a) {
        if (in(pos + 4) == 'V') {
          if (in(pos + 5) == 0x07) {
            audio[12 + (in(pos + 6) & 7)] = 1; // B3: OOB for [16, 19]
          }
        }
      }
    }
    pos = pos + 3 + (size % 12);
    pkts = pkts + 1;
  }
  return pkts;
}
)ml";
  S.Seeds = {
      bytes({'R', 'I', 'F', 'F', 0x56, 0x20, 1, 'Q', 0, 0, 0x41, 5, 0, 8, 2,
             1, 0, 0}),
      bytes({'R', 'I', 'F', 'F', 0x41, 8, 0, 16, 9, 1, 0, 0, 0x53, 4, 0, 0,
             0, 0}),
  };
  return S;
}

} // namespace targets
} // namespace pathfuzz
