//===- Targets.h - The UNIFUZZ-analogue subject suite -----------*- C++ -*-===//
//
// Part of the pathfuzz project: a reproduction of "Towards Path-Aware
// Coverage-Guided Fuzzing" (CGO 2026).
//
//===----------------------------------------------------------------------===//
//
// Eighteen MiniLang subjects standing in for the 18 UNIFUZZ programs the
// paper evaluates on (Table I). Each mimics the input-format flavour of
// its namesake (chunk parsers, token scanners, recursive structure walks)
// and carries *planted* memory-safety bugs of three difficulty classes:
//
//   - plain bugs: reachable once the guarding branches are covered, the
//     kind any coverage-guided fuzzer finds;
//   - path-gated bugs: the faulting state is only set along a specific
//     intra-procedural path whose edges are all individually coverable
//     (Fig. 1's blind spot — where the path feedback should shine);
//   - progression bugs: an index/accumulator must creep to a limit through
//     repeated executions of the same edges (the cflow zero-day's shape).
//
// Ground-truth bug identity comes from the VM fault site, replacing the
// paper's manual triage. nm-new intentionally carries no bugs: the paper
// reports zero findings on it for every fuzzer, and an honest zero row is
// part of the reproduction.
//
//===----------------------------------------------------------------------===//

#ifndef PATHFUZZ_TARGETS_TARGETS_H
#define PATHFUZZ_TARGETS_TARGETS_H

#include "strategy/Campaign.h"

#include <string>
#include <vector>

namespace pathfuzz {
namespace targets {

using strategy::Subject;

/// Build a seed from a C string (no NUL terminator included).
fuzz::Input bytes(const char *S);
/// Build a seed from raw bytes.
fuzz::Input bytes(std::initializer_list<uint8_t> Bs);

// One factory per subject (each in its own translation unit).
Subject makeCflow();
Subject makeExiv2();
Subject makeFfmpeg();
Subject makeFlvmeta();
Subject makeGdk();
Subject makeImginfo();
Subject makeInfotocap();
Subject makeJhead();
Subject makeJq();
Subject makeLame();
Subject makeMp3gain();
Subject makeMp42aac();
Subject makeMujs();
Subject makeNmNew();
Subject makeObjdump();
Subject makePdftotext();
Subject makeSqlite3();
Subject makeTiffsplit();

/// The full suite in the paper's (alphabetical) order.
const std::vector<Subject> &allSubjects();

/// Look up one subject by name; nullptr if absent.
const Subject *findSubject(const std::string &Name);

/// Subset selection honoring the REPRO_SUBJECTS env list (all when unset).
std::vector<Subject> subjectsFromEnv();

} // namespace targets
} // namespace pathfuzz

#endif // PATHFUZZ_TARGETS_TARGETS_H
