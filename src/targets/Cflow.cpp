//===- Cflow.cpp - cflow subject (C token scanner analogue) -------------------===//
//
// Part of the pathfuzz project.
//
// Mimics GNU cflow's tokenizer/declaration parser. Planted bugs:
//   B1 (progression): push_token writes token_stack[curs] without a bound
//      check; curs only resets at ';', so a statement with >= 24 tokens
//      overflows — the shape of the paper's cflow zero-day (curs creeping
//      to token_stack_length through repeated same-edge executions).
//   B2 (path-gated, the Fig. 1 shape): finish_decl sets j = 3 only on the
//      rare (ntok % 4 == 0 && ntok > 9) path and overflows decl_info only
//      when that path combines with a declaration starting with 'h'.
//   B3 (path-gated, branchless): pragma flag combinations select a slot
//      without any branch testing the combination; three occurrences of
//      the 0x2c combo in one input overflow attr_tab. Edge coverage gets
//      no combo-specific stepping stone; the path feedback's per-path hit
//      counts ladder through one/two occurrences to the crash.
//
//===----------------------------------------------------------------------===//

#include "targets/Targets.h"

namespace pathfuzz {
namespace targets {

Subject makeCflow() {
  Subject S;
  S.Name = "cflow";
  S.Source = R"ml(
// cflow: C call-graph extractor analogue.
global token_stack[24];
global decl_info[14];
global counters[4];
global pragma_val[64];
global attr_tab[2];

fn is_ident_start(c) {
  if (c >= 'a' && c <= 'z') { return 1; }
  if (c >= 'A' && c <= 'Z') { return 1; }
  if (c == '_') { return 1; }
  return 0;
}

fn is_ident_char(c) {
  if (is_ident_start(c)) { return 1; }
  if (c >= '0' && c <= '9') { return 1; }
  return 0;
}

fn push_token(kind) {
  var curs = counters[0];
  token_stack[curs] = kind;      // B1: no bound check against 24
  counters[0] = curs + 1;
  return curs;
}

fn finish_decl(ntok, first_char) {
  var j;
  if (ntok % 4 == 0 && ntok > 9) {
    j = 3;                        // rare path
  } else {
    j = -2;
  }
  if (first_char == 'h') {
    decl_info[ntok + j] = 7;      // B2: overflows iff j == 3 and ntok == 12
  } else {
    if (j < 0) { j = -j; }
    decl_info[j] = 1;
  }
  return j;
}

fn parse_pragma(pos) {
  // "@" then 6 independent flag decisions (64 acyclic paths through one
  // call); each occurrence bumps the slot named by the flag combination.
  // No branch ever tests the combination, so edge coverage gains no
  // combo-specific stepping stone — only the path feedback distinguishes
  // the combos and their per-path hit counts (B3 arm).
  var flags = 0;
  if (in(pos + 1) & 1) { flags = flags + 1; }
  if (in(pos + 2) & 2) { flags = flags + 2; }
  if (in(pos + 3) & 4) { flags = flags + 4; }
  if (in(pos + 4) & 8) { flags = flags + 8; }
  if (in(pos + 5) & 16) { flags = flags + 16; }
  if (in(pos + 6) & 32) { flags = flags + 32; }
  pragma_val[flags] = pragma_val[flags] + 300;
  return pos + 7;
}

fn apply_pragmas() {
  // B3: attr_tab has 2 cells; slot 0x2c accumulates 300 per occurrence of
  // its flag combination, so a third 0x2c pragma in one input indexes
  // past the table. The path feedback sees per-combo hit counts (one,
  // two, crash) as distinct novelties; edge hit counts only bucket the
  // total number of pragma calls, combo-blind.
  var v = pragma_val[0x2c];
  attr_tab[v / 301] = 1;
  return v;
}

fn scan_ident(pos) {
  var i = pos;
  while (i < len() && is_ident_char(in(i))) {
    i = i + 1;
  }
  return i;
}

fn main() {
  var pos = 0;
  var ntok = 0;
  var depth = 0;
  var first = 0;
  while (pos < len()) {
    var c = in(pos);
    if (is_ident_start(c)) {
      if (ntok == 0) { first = c; }
      push_token(2);
      ntok = ntok + 1;
      pos = scan_ident(pos);
      continue;
    }
    if (c >= '0' && c <= '9') {
      push_token(3);
      ntok = ntok + 1;
      pos = pos + 1;
      continue;
    }
    if (c == '(') {
      depth = depth + 1;
      push_token(1);
      ntok = ntok + 1;
    } else if (c == ')') {
      if (depth > 0) { depth = depth - 1; }
    } else if (c == ';') {
      if (ntok > 0 && ntok <= 12 && depth == 0) {
        finish_decl(ntok, first);
      }
      counters[0] = 0;            // statement boundary resets the stack
      ntok = 0;
      first = 0;
    } else if (c == '{') {
      counters[1] = counters[1] + 1;
    } else if (c == '}') {
      counters[1] = counters[1] - 1;
    } else if (c == '@') {
      pos = parse_pragma(pos);
      continue;
    }
    pos = pos + 1;
  }
  apply_pragmas();
  return counters[0];
}
)ml";
  S.Seeds = {
      bytes("int foo(char x);\nvoid bar() { foo(1); }\n"),
      bytes("hello(a, b2, c);\nx = y + 1;\n"),
  };
  return S;
}

} // namespace targets
} // namespace pathfuzz
