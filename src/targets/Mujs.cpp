//===- Mujs.cpp - mujs subject (JS expression evaluator analogue) -------------===//
//
// Part of the pathfuzz project.
//
// Mimics mujs's tokenizer and operator-precedence evaluation with an
// operand stack. Planted bugs:
//   B1 (plain): long identifiers overflow the name buffer.
//   B2 (progression): consecutive unary operators push sentinel operands
//      without popping; a chain of 10 creeps the stack past its end.
//   B3 (path-gated): the regex-literal path sets a "sticky" flag slot
//      from the flag character only when the literal was preceded by an
//      operator (divide/regex ambiguity — the classic JS lexer hazard).
//
//===----------------------------------------------------------------------===//

#include "targets/Targets.h"

namespace pathfuzz {
namespace targets {

Subject makeMujs() {
  Subject S;
  S.Name = "mujs";
  S.Source = R"ml(
// mujs: embeddable JavaScript interpreter analogue.
global stack[10];
global name[8];
global rflags[6];
global vstate[4];

fn push(v) {
  var sp = vstate[0];
  stack[sp] = v;                  // B2: unchecked push
  vstate[0] = sp + 1;
  return sp;
}

fn pop() {
  var sp = vstate[0];
  if (sp > 0) { vstate[0] = sp - 1; }
  return stack[vstate[0]];
}

fn lex_regex(pos, after_op) {
  var i = pos;
  while (i < len() && in(i) != '/') { i = i + 1; }
  var flag = in(i + 1);
  if (after_op == 1 && flag == 'y') {
    rflags[(in(i + 2) & 7)] = 1;  // B3: index up to 7 > 5 on the regex path
  } else if (flag == 'g') {
    rflags[0] = 1;
  }
  return i + 2;
}

fn main() {
  var pos = 0;
  var after_op = 1;
  while (pos < len()) {
    var c = in(pos);
    if (c >= 'a' && c <= 'z') {
      var j = 0;
      while (pos + j < len() && in(pos + j) >= 'a' && in(pos + j) <= 'z' && j < 12) {
        name[j] = in(pos + j);    // B1: identifiers up to 12 chars, 8 cells
        j = j + 1;
      }
      push(1);
      pos = pos + j;
      after_op = 0;
      continue;
    }
    if (c >= '0' && c <= '9') {
      push(c - '0');
      after_op = 0;
    } else if (c == '+' || c == '*') {
      var b = pop();
      var a = pop();
      push(a + b);
      after_op = 1;
    } else if (c == '!' || c == '~') {
      push(-1);                   // B2 arm: unary pushes without popping
      after_op = 1;
    } else if (c == '/') {
      pos = lex_regex(pos + 1, after_op);
      after_op = 0;
    } else if (c == ';') {
      vstate[0] = 0;
    }
    pos = pos + 1;
  }
  return vstate[0];
}
)ml";
  S.Seeds = {
      bytes("ab + 3 * !4; x/re/g; 2+2"),
      bytes("!~!1; foo/r/y7"),
  };
  return S;
}

} // namespace targets
} // namespace pathfuzz
