//===- Exiv2.cpp - exiv2 subject (metadata TLV parser analogue) ---------------===//
//
// Part of the pathfuzz project.
//
// Mimics exiv2's metadata chunk parsing. Planted bugs:
//   B1 (plain): comment copy trusts a clamped-too-late length.
//   B2 (ordering): a type-2 chunk with magic 0xAB frees the scratch
//      buffer; any later type-3 chunk uses it (use-after-free).
//   B3 (plain): high palette slots only validated on the non-'X' path.
//   B4 (path-gated): the IFD writer picks an unchecked stride only on the
//      (fmt == 6 && count % 5 == 0) path; combined with an 'R' marker and
//      count % 12 >= 10 (e.g. count == 35) the write lands past the table.
//   B5 (path-gated, branchless): XMP property flag combos bump per-combo
//      counters; three 0x32 combos in one image overflow xmptab.
//
//===----------------------------------------------------------------------===//

#include "targets/Targets.h"

namespace pathfuzz {
namespace targets {

Subject makeExiv2() {
  Subject S;
  S.Name = "exiv2";
  S.Source = R"ml(
// exiv2: image metadata library analogue.
global tagv[20];
global ifd[18];
global nstat[4];
global xmpv[64];
global xmptab[2];

fn copy_comment(buf, pos, l) {
  var n = l;
  if (n > 20) { n = 20; }
  var i = 0;
  while (i < n && pos + i < len()) {
    buf[i] = in(pos + i);         // B1: buf has 16 cells, n reaches 20
    i = i + 1;
  }
  return i;
}

fn write_ifd(fmt, count, marker) {
  var stride;
  if (fmt == 6 && count % 5 == 0) {
    stride = 4;                   // rare path: unchecked stride
  } else {
    stride = 1;
  }
  var base = count % 12;
  if (marker == 'R') {
    ifd[base + stride * 2] = fmt; // B4: base 11 + 8 = 19 > 17 needs rare path
  } else {
    ifd[base] = fmt;
  }
  return stride;
}

fn parse_xmp(pos) {
  // XMP property flags: six branchless combination decisions (B5 arm).
  var flags = 0;
  if (in(pos + 1) & 1) { flags = flags + 1; }
  if (in(pos + 2) & 2) { flags = flags + 2; }
  if (in(pos + 3) & 4) { flags = flags + 4; }
  if (in(pos + 4) & 8) { flags = flags + 8; }
  if (in(pos + 5) & 16) { flags = flags + 16; }
  if (in(pos + 6) & 32) { flags = flags + 32; }
  xmpv[flags] = xmpv[flags] + 300;
  return flags;
}

fn finish_xmp() {
  // B5: three 0x32-combo XMP packets in one image overflow xmptab.
  var v = xmpv[0x32];
  xmptab[v / 301] = 1;
  return v;
}

fn main() {
  if (len() < 6) { return 0; }
  if (in(0) != 'E' || in(1) != 'x') { return 0; }
  var buf = alloc(16);
  var pos = 2;
  var chunks = 0;
  while (pos + 3 <= len() && chunks < 40) {
    var tag = in(pos);
    var l = in(pos + 1);
    if (tag == 1) {
      copy_comment(buf, pos + 2, l);
    } else if (tag == 2) {
      if (l == 0xab) { free(buf); }  // B2 arm
      nstat[0] = nstat[0] + 1;
    } else if (tag == 3) {
      buf[0] = l;                  // B2 trigger: UAF after a 2/0xab chunk
    } else if (tag == 4) {
      var slot = (l * 3) % 32;
      if (slot < 20) {
        tagv[slot] = 1;
      } else if (in(pos + 2) == 'X') {
        tagv[slot - 4] = 2;        // B3: slot - 4 in [20, 27] overflows
      }
    } else if (tag == 5) {
      write_ifd(in(pos + 2) & 7, l, in(pos + 3));
    } else if (tag == 6) {
      parse_xmp(pos + 1);
    }
    pos = pos + 2 + (l % 8);
    chunks = chunks + 1;
  }
  finish_xmp();
  return chunks;
}
)ml";
  S.Seeds = {
      bytes({'E', 'x', 1, 4, 'a', 'b', 'c', 'd', 4, 5, 'X', 0, 5, 6, 6, 'R',
             0, 0}),
      bytes({'E', 'x', 2, 0x10, 0, 0, 3, 7, 0, 0, 1, 2, 'h', 'i', 0, 0}),
  };
  return S;
}

} // namespace targets
} // namespace pathfuzz
