//===- Mp3gain.cpp - mp3gain subject (MP3 frame gain analysis analogue) -------===//
//
// Part of the pathfuzz project.
//
// Mimics mp3gain's frame-header scan and ReplayGain accumulation.
// Planted bugs:
//   B1 (plain): bitrate index 0 ("free format") divides by zero in the
//      frame-length computation.
//   B2 (progression): the per-frame gain accumulates; gain_tab is indexed
//      by 16 + acc/4 which only overflows once acc creeps to its +64
//      saturation — requiring many frames that each took the positive-gain
//      path.
//   B3 (path-gated): analyze_frame sets a +9 boost only on the rare
//      (mode == 3 && padded) path; the boost makes a later write with
//      channel byte 'c' overflow.
//
//===----------------------------------------------------------------------===//

#include "targets/Targets.h"

namespace pathfuzz {
namespace targets {

Subject makeMp3gain() {
  Subject S;
  S.Name = "mp3gain";
  S.Source = R"ml(
// mp3gain: ReplayGain analysis analogue.
global gain_tab[32];
global track[12];

fn analyze_frame(pos, bitrate, mode) {
  var gain = 0;
  var padded = (in(pos + 3) & 1);
  if (bitrate > 8) {
    gain = 3;
  } else if (bitrate > 2) {
    gain = 1;
  } else {
    gain = -2;
  }
  var boost = 0;
  if (mode == 3 && padded == 1) {
    boost = 9;                    // rare path
  } else {
    boost = 0;
  }
  var chan = in(pos + 2) & 0x7f;
  if (chan == 'c') {
    track[boost + 3] = gain;      // B3: 3 + 9 = 12 overflows (size 12)
  } else {
    track[1] = track[1] + 1;
  }
  return gain;
}

fn main() {
  if (len() < 4) { return 0; }
  var pos = 0;
  var frames = 0;
  var acc = 0;
  while (pos + 4 <= len() && frames < 64) {
    if (in(pos) != 0xff) { pos = pos + 1; continue; }
    var hdr = in(pos + 1);
    if ((hdr & 0xe0) != 0xe0) { pos = pos + 1; continue; }
    var bitrate = (in(pos + 2) >> 4) & 15;
    var mode = (hdr >> 1) & 3;
    var flen = 0;
    if (bitrate == 15) { pos = pos + 2; continue; }
    flen = 1152 / (bitrate * 3 % 7);   // B1: div-by-zero when bitrate*3 % 7 == 0
    var gain = analyze_frame(pos, bitrate, mode);
    acc = acc + gain;
    if (acc > 64) { acc = 64; }
    if (acc < -64) { acc = -64; }
    frames = frames + 1;
    pos = pos + 4 + (flen % 24);
  }
  if (frames > 3 && acc > 0) {
    gain_tab[16 + acc / 4] = frames;   // B2: index 32 needs acc == 64
  }
  return frames;
}
)ml";
  S.Seeds = {
      bytes({0xff, 0xe2, 0x52, 0x01, 0, 0, 0, 0, 0xff, 0xe2, 0x52, 0x00, 0,
             0, 0, 0, 0xff, 0xe2, 0x92, 0x01}),
      bytes({0xff, 0xe0, 0x10, 0x00, 1, 2, 3, 4, 5, 6}),
  };
  return S;
}

} // namespace targets
} // namespace pathfuzz
