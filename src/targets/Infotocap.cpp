//===- Infotocap.cpp - infotocap subject (terminfo compiler analogue) ---------===//
//
// Part of the pathfuzz project.
//
// Mimics ncurses infotocap's capability parsing. This subject is built to
// reproduce the paper's most extreme queue-explosion case (Table I:
// 191,297 path-queue items vs 3,538 for edges): parse_flags processes
// eight independent flag bits in one function body, giving 2^8 acyclic
// paths per call, and the escape decoder has a dense branch ladder.
// Planted bugs:
//   B1 (plain): capability names longer than the name buffer.
//   B2 (path-gated): %-escape parameters push twice only on the
//      (saw_percent && digit) path; the parameter stack then overruns.
//   B3 (plain): delay values index the delay table modulo 20.
//   B4/B5 (deep chains): extended %-capabilities hide OOB writes behind
//      chains of three/four distinct byte checks — breadth bugs that
//      reward the focused queue of an edge-coverage fuzzer (the paper's
//      pcguard finds 5 bugs here vs path's 2).
//
//===----------------------------------------------------------------------===//

#include "targets/Targets.h"

namespace pathfuzz {
namespace targets {

Subject makeInfotocap() {
  Subject S;
  S.Name = "infotocap";
  S.Source = R"ml(
// infotocap: terminfo-to-termcap translator analogue.
global names[10];
global params[12];
global delays[16];
global flags[8];

fn parse_flags(b) {
  // Eight independent decisions: 256 acyclic paths through one call.
  var score = 0;
  if (b & 1) { flags[0] = 1; score = score + 1; }
  if (b & 2) { flags[1] = 1; score = score + 2; }
  if (b & 4) { flags[2] = 1; score = score + 4; }
  if (b & 8) { flags[3] = 1; score = score + 1; }
  if (b & 16) { flags[4] = 1; score = score + 3; }
  if (b & 32) { flags[5] = 1; score = score + 2; }
  if (b & 64) { flags[6] = 1; score = score + 5; }
  if (b & 128) { flags[7] = 1; score = score + 1; }
  return score;
}

fn parse_escape(pos) {
  var sp = 0;
  var i = pos;
  var saw_percent = 0;
  while (i < len() && in(i) != ';') {
    var c = in(i);
    if (c == '%') {
      saw_percent = 1;
    } else if (c >= '0' && c <= '9') {
      if (saw_percent == 1) {
        params[sp] = c - '0';     // B2 arm: double push on %-digit path
        sp = sp + 1;
        params[sp] = 0;           // B2: sp can step past 11 here
        saw_percent = 0;
      } else {
        if (sp < 10) { params[sp] = c - '0'; }
      }
      sp = sp + 1;
      if (sp > 11) { sp = 11; }
    } else if (c == 'd' || c == 'x') {
      if (sp > 0) { sp = sp - 1; }
    }
    i = i + 1;
  }
  return i;
}

fn main() {
  var pos = 0;
  var ncap = 0;
  while (pos < len() && ncap < 64) {
    var c = in(pos);
    if (c == ',') {
      pos = pos + 1;
      continue;
    }
    if (c == '$') {
      var d = in(pos + 1);
      delays[d % 20] = d;         // B3: d % 20 in [16, 19] overflows
      pos = pos + 2;
    } else if (c == '\\') {
      pos = parse_escape(pos + 1) + 1;
    } else if (c == '=') {
      var j = 0;
      while (pos + 1 + j < len() && in(pos + 1 + j) != ',' && j < 14) {
        names[j] = in(pos + 1 + j); // B1: names holds 10 cells
        j = j + 1;
      }
      pos = pos + 1 + j;
    } else if (c == '%') {
      // Extended %-capability: a deep chain of distinct checks. Each
      // level is a new edge the first time it is passed, so an edge-
      // coverage fuzzer lays stepping stones; a path-aware fuzzer spends
      // its budget on path diversity instead and tends to arrive later
      // (B4/B5 — the bugs pcguard wins in the paper's infotocap row).
      if (in(pos + 1) == 'g') {
        if (in(pos + 2) == '1') {
          if (in(pos + 3) == '}') {
            names[in(pos + 4) & 15] = 1;     // B4: OOB for values in [10, 15]
          }
        }
      } else if (in(pos + 1) == 'p') {
        if (in(pos + 2) == '9') {
          if (in(pos + 3) == '|') {
            if (in(pos + 4) == '^') {
              delays[14 + (in(pos + 5) & 3)] = 1; // B5: OOB at 16/17
            }
          }
        }
      }
      pos = pos + 2;
    } else if (c >= 'a' && c <= 'z') {
      parse_flags(in(pos + 1));
      pos = pos + 2;
    } else {
      pos = pos + 1;
    }
    ncap = ncap + 1;
  }
  return ncap;
}
)ml";
  S.Seeds = {
      bytes("am,xb,=smcup,\\%1d;,$5,co"),
      bytes("k7,=cl,\\%%2x;,li,$3"),
  };
  return S;
}

} // namespace targets
} // namespace pathfuzz
