//===- Jq.cpp - jq subject (JSON parser analogue) ------------------------------===//
//
// Part of the pathfuzz project.
//
// Mimics jq's recursive-descent JSON reader. The paper reports exactly one
// bug found by every fuzzer, so a single moderately easy bug is planted:
//   B1 (plain-ish): string escapes of the form \uXXXX write the decoded
//      pair into a fixed scratch buffer indexed by the nesting depth; at
//      depth >= 6 the write escapes the buffer.
//
//===----------------------------------------------------------------------===//

#include "targets/Targets.h"

namespace pathfuzz {
namespace targets {

Subject makeJq() {
  Subject S;
  S.Name = "jq";
  S.Source = R"ml(
// jq: JSON processor analogue.
global scratch[12];
global jstate[4];

fn skip_ws(pos) {
  while (pos < len()) {
    var c = in(pos);
    if (c != ' ' && c != '\n' && c != '\t') { break; }
    pos = pos + 1;
  }
  return pos;
}

fn parse_string(pos, depth) {
  var i = pos;
  while (i < len() && in(i) != '"') {
    if (in(i) == '\\') {
      var e = in(i + 1);
      if (e == 'u') {
        scratch[depth * 2] = in(i + 2);     // B1: depth >= 6 overflows
        scratch[depth * 2 + 1] = in(i + 3);
        i = i + 4;
      }
      i = i + 2;
    } else {
      i = i + 1;
    }
  }
  return i + 1;
}

fn parse_value(pos, depth) {
  pos = skip_ws(pos);
  if (pos >= len() || depth > 24) { return pos; }
  var c = in(pos);
  if (c == '{') {
    pos = pos + 1;
    while (pos < len() && in(pos) != '}') {
      pos = skip_ws(pos);
      if (in(pos) == '"') { pos = parse_string(pos + 1, depth); }
      pos = skip_ws(pos);
      if (pos < len() && in(pos) == ':') {
        pos = parse_value(pos + 1, depth + 1);
      } else {
        pos = pos + 1;
      }
      if (pos < len() && in(pos) == ',') { pos = pos + 1; }
    }
    return pos + 1;
  }
  if (c == '[') {
    pos = pos + 1;
    while (pos < len() && in(pos) != ']') {
      pos = parse_value(pos, depth + 1);
      if (pos < len() && in(pos) == ',') { pos = pos + 1; }
      pos = skip_ws(pos);
      if (pos < len() && in(pos) == 0) { break; }
    }
    return pos + 1;
  }
  if (c == '"') {
    return parse_string(pos + 1, depth);
  }
  // numbers / literals
  while (pos < len()) {
    var d = in(pos);
    if (d == ',' || d == '}' || d == ']' || d == ' ') { break; }
    pos = pos + 1;
  }
  jstate[0] = jstate[0] + 1;
  return pos;
}

fn main() {
  if (len() == 0) { return 0; }
  parse_value(0, 0);
  return jstate[0];
}
)ml";
  S.Seeds = {
      bytes("{\"a\": [1, 2, {\"b\": \"c\\u0041d\"}], \"e\": 3}"),
      bytes("[[1],[2,[3]]]"),
  };
  return S;
}

} // namespace targets
} // namespace pathfuzz
