//===- NmNew.cpp - nm-new subject (symbol lister analogue) --------------------===//
//
// Part of the pathfuzz project.
//
// Mimics binutils nm-new's symbol-table walk. The paper reports ZERO bugs
// found on nm-new by every fuzzer (Table II), so this subject deliberately
// contains no planted bugs: every table access is properly bounded. An
// honest all-zero row is part of the reproduction — it also exercises the
// harness's handling of bug-free subjects.
//
//===----------------------------------------------------------------------===//

#include "targets/Targets.h"

namespace pathfuzz {
namespace targets {

Subject makeNmNew() {
  Subject S;
  S.Name = "nm-new";
  S.Source = R"ml(
// nm-new: symbol lister analogue (no planted bugs).
global symtab[32];
global strtab[24];
global nstate[4];

fn classify(kind, value) {
  if (kind == 'T' || kind == 't') { return 1; }
  if (kind == 'D' || kind == 'd') { return 2; }
  if (kind == 'B' || kind == 'b') { return 3; }
  if (kind == 'U') {
    if (value > 0) { return 5; }
    return 4;
  }
  return 0;
}

fn store_symbol(idx, kind, value) {
  if (idx < 0 || idx >= 32) { return 0; }
  symtab[idx] = kind * 256 + (value & 255);
  return 1;
}

fn store_name(pos, n) {
  if (n > 24) { n = 24; }
  var i = 0;
  while (i < n && pos + i < len()) {
    if (i < 24) { strtab[i] = in(pos + i); }
    i = i + 1;
  }
  return i;
}

fn main() {
  if (len() < 4) { return 0; }
  if (in(0) != 0x7f || in(1) != 'E') { return 0; }
  var pos = 2;
  var nsyms = 0;
  while (pos + 4 <= len() && nsyms < 40) {
    var kind = in(pos);
    var value = in(pos + 1);
    var nlen = in(pos + 2) & 31;
    var cls = classify(kind, value);
    if (cls > 0) {
      store_symbol(nsyms % 32, cls, value);
      store_name(pos + 3, nlen);
      nstate[0] = nstate[0] + 1;
    } else {
      nstate[1] = nstate[1] + 1;
    }
    pos = pos + 3 + (nlen % 9);
    nsyms = nsyms + 1;
  }
  return nstate[0];
}
)ml";
  S.Seeds = {
      bytes({0x7f, 'E', 'T', 4, 4, 'm', 'a', 'i', 'n', 'U', 0, 2, 'x', 'y',
             'D', 9, 3, 'f', 'o', 'o'}),
  };
  return S;
}

} // namespace targets
} // namespace pathfuzz
