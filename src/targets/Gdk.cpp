//===- Gdk.cpp - gdk-pixbuf subject (image loader analogue) -------------------===//
//
// Part of the pathfuzz project.
//
// Mimics gdk-pixbuf's header parsing, palette handling and scanline
// fill. The paper finds many bugs here (7-11 across fuzzers); a rich mix
// is planted:
//   B1 (plain): greyscale images index the row table by the raw stride.
//   B2 (plain): palette indices above 15 only range-checked for one
//      colour type.
//   B3 (path-gated): interlaced rows use a doubled step only on the
//      (interlace == 7 && height odd) path; the row table write then
//      escapes.
//   B4 (plain): zero width divides the aspect computation.
//   B5 (progression): each 'G' chunk grows a gamma accumulator that
//      indexes a table once it exceeds its cap.
//   B6 (path-gated, branchless): ancillary-chunk flag combos bump a
//      per-combo counter; three 0x0b combos in one image overflow
//      chunktab.
//
//===----------------------------------------------------------------------===//

#include "targets/Targets.h"

namespace pathfuzz {
namespace targets {

Subject makeGdk() {
  Subject S;
  S.Name = "gdk";
  S.Source = R"ml(
// gdk: pixbuf loader analogue.
global rows[20];
global palette[16];
global gamma_tab[10];
global gstate[4];
global chunkv[32];
global chunktab[2];

fn fill_rows(h, interlace) {
  var step;
  if (interlace == 7 && h % 2 == 1) {
    step = 2;                     // rare interlace path
  } else {
    step = 1;
  }
  var r = 0;
  var i = 0;
  while (i < h && i < 12) {
    rows[r] = i;                  // B3: r = 11*2 = 22 > 19 on rare path
    r = r + step;
    i = i + 1;
  }
  return r;
}

fn set_palette(idx, val, ctype) {
  if (ctype == 3) {
    if (idx < 16) { palette[idx] = val; }
    return 1;
  }
  palette[idx] = val;             // B2: unchecked for other colour types
  return 0;
}

fn parse_chunk_flags(pos) {
  // Ancillary chunk bits: five independent decisions, no branch on the
  // combination (B6 arm).
  var flags = 0;
  if (in(pos + 1) & 1) { flags = flags + 1; }
  if (in(pos + 2) & 2) { flags = flags + 2; }
  if (in(pos + 3) & 4) { flags = flags + 4; }
  if (in(pos + 4) & 8) { flags = flags + 8; }
  if (in(pos + 5) & 16) { flags = flags + 16; }
  chunkv[flags] = chunkv[flags] + 300;
  return pos + 6;
}

fn finish_chunks() {
  // B6: three 0x0b-combo chunks in one image overflow chunktab.
  var v = chunkv[0x0b];
  chunktab[v / 301] = 1;
  return v;
}

fn main() {
  if (len() < 10) { return 0; }
  if (in(0) != 'G' || in(1) != 'P' || in(2) != 'X') { return 0; }
  var w = in(3);
  var h = in(4);
  var ctype = in(5) & 3;
  var interlace = in(6) & 7;
  if (w * h > 2000) { return 1; } // B1: misses the +stride term below
  var stride = w + 3;
  var pixels = w * h + stride;
  if (ctype == 2) {
    rows[stride % 26] = 1;        // B1: stride % 26 in [20, 25] overflows
  }
  if (w == 0) { return 2; }
  var aspect = h * 100 / w;       // safe: w checked above
  var ratio = 1000 / (h + 1 - (in(7) & 1)); // B4: h==0 and odd in(7) divides by 0
  fill_rows(h, interlace);
  var pos = 8;
  var acc = 0;
  while (pos + 2 <= len()) {
    var op = in(pos);
    var arg = in(pos + 1);
    if (op == 'P') {
      set_palette(arg % 24, pos, ctype);
    } else if (op == 'G') {
      acc = acc + (arg % 3);
      if (acc > 9) {
        gamma_tab[acc] = 1;       // B5: acc crept past the table
      } else {
        gamma_tab[acc] = 2;
      }
    } else if (op == 'C') {
      pos = parse_chunk_flags(pos) - 2;
    } else if (op == 'E') {
      break;
    }
    pos = pos + 2;
  }
  finish_chunks();
  gstate[0] = aspect + ratio + pixels;
  return acc;
}
)ml";
  S.Seeds = {
      bytes({'G', 'P', 'X', 8, 6, 3, 0, 0, 'P', 4, 'G', 2, 'G', 1, 'E', 0}),
      bytes({'G', 'P', 'X', 4, 9, 1, 7, 0, 'P', 10, 'E', 0, 0, 0}),
  };
  return S;
}

} // namespace targets
} // namespace pathfuzz
